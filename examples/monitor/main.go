// Monitor: the streaming example as a client-server system. A monitoring
// daemon (the same service core cmd/dclserved wraps) listens on loopback;
// a measurement agent drives a live simulation — the bottleneck's heavy
// cross traffic switches on only mid-run — and POSTs each batch of probe
// observations to the daemon as it settles, backing off whenever the
// ingestion queue pushes back with 429. A second goroutine watches the
// session's SSE feed and prints every window verdict and the dcl-onset
// transition the moment the congested link appears.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"dominantlink"
	"dominantlink/internal/scenario"
	"dominantlink/internal/traffic"
)

// obsWire mirrors the daemon's observation JSON.
type obsWire struct {
	Seq      int64   `json:"seq"`
	SendTime float64 `json:"send_time"`
	Delay    float64 `json:"delay"`
	Lost     bool    `json:"lost"`
}

// windowWire is the slice of the daemon's window JSON this example prints.
type windowWire struct {
	StartTime  float64 `json:"start_time"`
	EndTime    float64 `json:"end_time"`
	End        int     `json:"end"`
	Start      int     `json:"start"`
	Admitted   bool    `json:"admitted"`
	NoLosses   bool    `json:"no_losses"`
	Summary    string  `json:"summary"`
	Transition string  `json:"transition"`
	Error      string  `json:"error"`
}

func main() {
	// The daemon: an embedded Monitor serving its HTTP API on loopback.
	mon := dominantlink.NewMonitor(dominantlink.MonitorConfig{
		Identify: dominantlink.IdentifyConfig{
			Symbols: 5, HiddenStates: 2, X: 0.06, Y: 0, ExactY: true, Seed: 1,
		},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: mon.Handler()}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("daemon listening on %s\n", base)

	// The monitored path: the paper's Table II bottleneck, with L1's
	// congesting UDP load starting only around t = 200 s.
	onset := 200.0
	spec := scenario.Spec{
		Seed:     7,
		Duration: 420,
		Backbone: []scenario.LinkSpec{
			{Name: "L1", Bandwidth: 1e6, Delay: 0.005, BufferBytes: 20000},
			{Name: "L2", Bandwidth: 10e6, Delay: 0.005, BufferBytes: 80000},
			{Name: "L3", Bandwidth: 10e6, Delay: 0.005, BufferBytes: 80000},
		},
		PathTraffic: scenario.TrafficMix{
			HTTP: 2, HTTPCfg: traffic.HTTPConfig{MeanThinkTime: 4},
			StartMin: 0, StartMax: 20,
		},
		CrossTraffic: []scenario.TrafficMix{
			{
				UDP: []traffic.OnOffUDPConfig{
					{Rate: 0.9e6, PktSize: 1000, MeanOn: 0.6, MeanOff: 1.2},
					{Rate: 0.7e6, PktSize: 1000, MeanOn: 0.5, MeanOff: 1.5},
				},
				StartMin: onset, StartMax: onset + 5,
			},
		},
		Probe: traffic.ProbeConfig{Interval: 0.02, Size: 10, Start: 5, Stop: 415},
	}

	// Create the session: 60 s windows sliding by 30 s, with the admission
	// gate's loss band widened for the swinging on-off cross traffic (as in
	// the streaming example).
	put, err := http.NewRequest("PUT", base+"/v1/paths/backbone",
		strings.NewReader(`{"duration_seconds": 60, "stride_seconds": 30, "gate_loss_factor": 8}`))
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(put)
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		log.Fatalf("creating session: %s", resp.Status)
	}

	// The watcher: tail the session's SSE feed, one verdict line per window.
	fmt.Printf("monitoring a 3-link path; L1 cross traffic starts at t≈%.0fs\n\n", onset)
	watchDone := make(chan float64, 1)
	go watch(base, watchDone)

	// The agent: consume the live simulation and ship it in batches.
	src := spec.Stream(0)
	batch := make([]obsWire, 0, 256)
	total := 0
	for {
		o, err := src.Next()
		eof := err == io.EOF
		if err != nil && !eof {
			log.Fatal(err)
		}
		if !eof {
			batch = append(batch, obsWire{Seq: o.Seq, SendTime: o.SendTime, Delay: o.Delay, Lost: o.Lost})
		}
		if len(batch) == cap(batch) || (eof && len(batch) > 0) {
			total += post(base, batch)
			batch = batch[:0]
		}
		if eof {
			break
		}
	}

	// Drain: the daemon flushes the final partial window and closes the
	// session, which ends the SSE stream.
	del, _ := http.NewRequest("DELETE", base+"/v1/paths/backbone", nil)
	resp, err = http.DefaultClient.Do(del)
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	detected := <-watchDone

	if detected < 0 {
		log.Fatal("no dcl-onset detected — expected congestion from mid-run")
	}
	fmt.Printf("\ncongestion onset at t≈%.0fs detected in the window starting t=%.0fs\n", onset, detected)
	fmt.Printf("%d observations shipped over HTTP\n", total)
	if resp, err = http.Get(base + "/metrics"); err == nil {
		var met map[string]any
		json.NewDecoder(resp.Body).Decode(&met)
		resp.Body.Close()
		fmt.Printf("daemon counters: ingested=%v admitted=%v rejected=%v\n",
			met["observations_ingested"], met["windows_admitted"], met["windows_rejected"])
	}
}

// post ships one batch, resending from the accepted offset when the daemon
// answers 429; it returns the number of observations ingested.
func post(base string, batch []obsWire) int {
	sent := 0
	for sent < len(batch) {
		body, err := json.Marshal(batch[sent:])
		if err != nil {
			log.Fatal(err)
		}
		resp, err := http.Post(base+"/v1/paths/backbone/observations", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		var ack struct {
			Accepted int `json:"accepted"`
		}
		json.NewDecoder(resp.Body).Decode(&ack)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			return sent + ack.Accepted
		case http.StatusTooManyRequests:
			sent += ack.Accepted // back off and resend the rest
			time.Sleep(100 * time.Millisecond)
		default:
			log.Fatalf("ingest: %s", resp.Status)
		}
	}
	return sent
}

// watch tails the SSE feed until the session closes, printing each window
// verdict; it reports the start time of the first dcl-onset window (or -1).
func watch(base string, done chan<- float64) {
	detected := -1.0
	defer func() { done <- detected }()
	resp, err := http.Get(base + "/v1/paths/backbone/events")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if event != "window" {
				continue // transitions ride along on their window event
			}
			var w windowWire
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &w); err != nil {
				log.Fatal(err)
			}
			head := fmt.Sprintf("t=%5.0fs..%5.0fs (%4d probes):", w.StartTime, w.EndTime, w.End-w.Start)
			switch {
			case w.NoLosses:
				fmt.Printf("%s no losses — path healthy\n", head)
			case w.Error != "":
				fmt.Printf("%s identification failed: %s\n", head, w.Error)
			case !w.Admitted:
				fmt.Printf("%s non-stationary — window skipped\n", head)
			default:
				fmt.Printf("%s %s\n", head, w.Summary)
			}
			if w.Transition != "" {
				fmt.Printf("  >> %s\n", w.Transition)
				if w.Transition == "dcl-onset" && detected < 0 {
					detected = w.StartTime
				}
			}
		}
	}
}
