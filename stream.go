package dominantlink

import (
	"context"
	"io"

	"dominantlink/internal/core"
	"dominantlink/internal/trace"
)

// Streaming identification: where Identify answers "was there a dominant
// congested link over this trace", IdentifyStream watches an observation
// stream and answers it continuously — cutting the stream into sliding
// windows, admitting each window through the stationarity check, and
// reporting per-window verdicts with onset/clearance transitions. The
// one-shot API remains exact: a single window spanning a whole trace
// reproduces Identify byte for byte.

// Streaming types.
type (
	// ObservationSource is a pull iterator over probe observations; Next
	// returns io.EOF once the source is exhausted.
	ObservationSource = trace.ObservationSource
	// BatchSource is the batch-pull fast path of ObservationSource:
	// sources implementing it feed the streaming pipeline whole columnar
	// batches per call instead of one observation at a time. StreamCSV,
	// SourceFromTrace and the monitor's session queues all implement it;
	// the pipeline wraps anything else via trace.AsBatchSource.
	BatchSource = trace.BatchSource
	// Batch is a columnar (struct-of-arrays) block of probe observations —
	// seq/send-time/delay columns plus a loss bitmap — the zero-copy unit
	// of the streaming data plane. See NewBatch and BatchOfObservations.
	Batch = trace.Batch
	// WindowConfig shapes the sliding windows: Size (probe count) or
	// Duration (seconds), stride, the stationarity admission gate, the
	// per-window identification Deadline, and the Admit load-shedding
	// policy hook.
	WindowConfig = core.WindowConfig
	// WindowResult is the per-window outcome: stationarity report,
	// identification (or error), and the DCL transition.
	WindowResult = core.WindowResult
	// Transition classifies DCL status changes between decided windows.
	Transition = core.Transition
	// Windower cuts a source into windows and identifies them on an
	// Engine; see NewWindower for custom pool sizes.
	Windower = core.Windower
)

// Transition kinds.
const (
	TransitionNone    = core.TransitionNone
	TransitionOnset   = core.TransitionOnset
	TransitionCleared = core.TransitionCleared
	TransitionBound   = core.TransitionBound
)

// Degraded-window sentinels; match against WindowResult.Err with
// errors.Is. Neither is a terminal stream failure: the pipeline keeps
// going and later windows decide normally.
var (
	// ErrWindowDeadline marks a window whose identification was cut short
	// by WindowConfig.Deadline. The window stays undecided.
	ErrWindowDeadline = core.ErrWindowDeadline
	// ErrWindowShed marks a window refused by WindowConfig.Admit (e.g.
	// the monitor's circuit breaker): no identification ran, the result
	// has Shed set, and the error wraps the admission policy's reason.
	ErrWindowShed = core.ErrWindowShed
)

// StreamCSV returns a source reading probe observations incrementally
// from a CSV in the trace format (as written by Trace.WriteCSV): memory
// use is constant in the trace length, so arbitrarily long captures can
// be analyzed without materializing them. The returned source implements
// BatchSource, decoding whole columnar batches per pull when input is
// promptly available.
func StreamCSV(r io.Reader) BatchSource { return trace.StreamCSV(r) }

// SourceFromTrace adapts an in-memory trace into an ObservationSource
// (a BatchSource, in fact: the whole trace drains in bulk).
func SourceFromTrace(tr *Trace) BatchSource { return tr.Source() }

// CollectSource drains a source into a materialized Trace.
func CollectSource(src ObservationSource) (*Trace, error) { return trace.Collect(src) }

// NewBatch returns an empty columnar batch with room for capacity
// observations.
func NewBatch(capacity int) *Batch { return trace.NewBatch(capacity) }

// BatchOfObservations converts a row-major observation slice into a
// columnar batch, e.g. to feed MonitorSession.OfferBatch.
func BatchOfObservations(obs []Observation) *Batch { return trace.BatchOfObservations(obs) }

// AsBatchSource returns src itself when it already implements
// BatchSource, else an adapter pulling one observation per batch.
func AsBatchSource(src ObservationSource) BatchSource { return trace.AsBatchSource(src) }

// NewWindower returns a windower identifying admitted windows on a pool
// of the given size (workers <= 0 means GOMAXPROCS).
func NewWindower(workers int, cfg WindowConfig) *Windower {
	return core.NewWindower(core.NewEngine(workers), cfg)
}

// IdentifyStream runs the streaming pipeline over src: windows are cut
// per wcfg, gated on stationarity, identified concurrently on a
// GOMAXPROCS-sized pool, and emitted strictly in window order with DCL
// onset/clearance/bound transitions attached. The channel closes when the
// source is exhausted or ctx is canceled; consume it (or cancel) to keep
// the pipeline moving. A window with no losses is a decided "no DCL"
// (its result carries ErrNoLosses); a source failure surfaces as a final
// result carrying the error.
func IdentifyStream(ctx context.Context, src ObservationSource, wcfg WindowConfig, cfg IdentifyConfig) (<-chan WindowResult, error) {
	return core.NewWindower(core.NewEngine(0), wcfg).Stream(ctx, src, cfg)
}
