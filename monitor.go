package dominantlink

import (
	"io"
	"log/slog"

	"dominantlink/internal/monitor"
	"dominantlink/internal/obs"
	"dominantlink/internal/store"
)

// Multi-path monitoring: where IdentifyStream watches one observation
// stream, a Monitor watches many — one session per path, each a bounded
// ingestion queue feeding the windowed pipeline, with every session's
// window identifications multiplexed onto one shared worker pool. The
// monitor's Handler exposes the whole thing over HTTP (ingestion with
// backpressure, per-window results, an SSE transition feed, metrics,
// graceful drain); cmd/dclserved is the standalone daemon, and NewMonitor
// embeds the same service core into any Go program.

// Monitoring types.
type (
	// Monitor manages concurrent per-path identification sessions and
	// serves them over HTTP (Handler) or programmatically (Open).
	Monitor = monitor.Monitor
	// MonitorConfig shapes a Monitor: shared pool size, per-session queue
	// and history bounds, default window shape, identification config,
	// the overload controls (rate limits, shed policy, breaker), and the
	// observability settings (Logger turns on structured logging and
	// window-lifecycle tracing; TraceSample and TraceRing tune it).
	MonitorConfig = monitor.Config
	// MonitorSession is one monitored path: Offer (or the zero-copy
	// OfferBatch, taking a columnar Batch) ingests observations, Subscribe
	// streams events, Drain closes it flushing the final partial window.
	MonitorSession = monitor.Session
)

// Overload-control types: the monitor's admission machinery, configured
// through MonitorConfig and surfaced to clients as typed errors.
type (
	// ShedPolicy selects what a full session queue does with overflow:
	// reject it back to the client (default), drop the newest, or evict
	// the oldest queued observations.
	ShedPolicy = monitor.ShedPolicy
	// BreakerConfig configures the identification-latency circuit
	// breaker; the zero value disables it.
	BreakerConfig = monitor.BreakerConfig
	// RateLimitedError reports ingestion refused by a rate limit, with
	// the suggested retry delay; matches ErrRateLimited via errors.Is.
	RateLimitedError = monitor.RateLimitedError
	// SupervisorConfig shapes the per-session restart policy
	// (MonitorConfig.Supervise): a session whose pipeline dies abnormally
	// restarts in place with jittered exponential backoff, resuming window
	// numbering; after MaxRestarts failures within Window it is parked as
	// failed with the reason surfaced over the API. The zero value
	// supervises with defaults; Disable restores close-on-crash.
	SupervisorConfig = monitor.SupervisorConfig
)

// Shed policies for MonitorConfig.Shed.
const (
	ShedReject     = monitor.ShedReject
	ShedDropNewest = monitor.ShedDropNewest
	ShedDropOldest = monitor.ShedDropOldest
)

// Sentinel errors of the monitor's ingestion path; match with errors.Is.
// The HTTP layer maps them onto the /v1 error envelope (429 with
// Retry-After for ErrQueueFull and ErrRateLimited), and MonitorClient
// maps envelope codes back onto the same sentinels, so one vocabulary
// works on both sides of the wire.
var (
	ErrQueueFull       = monitor.ErrQueueFull
	ErrRateLimited     = monitor.ErrRateLimited
	ErrSessionClosed   = monitor.ErrSessionClosed
	ErrMonitorShutdown = monitor.ErrShuttingDown
	ErrTooManySessions = monitor.ErrTooManySessions
)

// ParseShedPolicy reads a shed policy name ("reject", "drop-newest",
// "drop-oldest"), as used by the dclserved -shed flag.
func ParseShedPolicy(s string) (ShedPolicy, error) { return monitor.ParseShedPolicy(s) }

// Observability: setting MonitorConfig.Logger threads a structured
// (log/slog) logger through the whole monitoring stack — one lifecycle
// log line per window with span timings (ingest wait, dispatch, gate, EM
// fit, durable append), discrete events for DCL transitions, shed
// windows, deadline expiries, breaker state changes, rate-limit
// rejections, store recoveries and session lifecycle, and a /debug/traces
// endpoint serving the slowest recent window traces. With Logger nil all
// of it is off and costs nothing. docs/OPERATIONS.md maps the event
// vocabulary to failure signatures and the daemon flags that tune them.
type (
	// WindowTrace is one window's lifecycle trace, attached to results as
	// WindowResult.Trace when tracing is on (WindowConfig.CollectTrace;
	// the monitor turns it on whenever MonitorConfig.Logger is set).
	WindowTrace = obs.WindowTrace
	// TraceSpans are a trace's derived per-stage durations in
	// milliseconds, as rendered by /debug/traces.
	TraceSpans = obs.Spans
)

// ParseLogLevel reads a log level name ("debug", "info", "warn",
// "error"), as used by the dclserved -log-level flag.
func ParseLogLevel(s string) (slog.Level, error) { return obs.ParseLevel(s) }

// NewLogger builds a structured logger writing to w in the given format
// ("text" or "json"), as used by the dclserved -log-format flag. Pass the
// result to MonitorConfig.Logger or ResultStoreOptions.Logger.
func NewLogger(w io.Writer, level slog.Level, format string) (*slog.Logger, error) {
	return obs.NewLogger(w, level, format)
}

// Durable result store: the monitor's per-path archive of window results
// and DCL transitions, a segmented CRC-checked write-ahead log that
// survives crashes (torn tails are truncated on reopen, everything
// earlier is intact) and lets a restarted monitor resume window numbering
// and serve pre-crash results. Attach one via MonitorConfig.Store (caller
// owns it) or MonitorConfig.StoreDir (the monitor owns it); inspect one
// offline with cmd/dclstore.
type (
	// ResultStore is a directory of per-path result logs; open with
	// OpenResultStore.
	ResultStore = store.Store
	// ResultStoreOptions configures a ResultStore: directory, fsync
	// policy, segment size, retention bounds.
	ResultStoreOptions = store.Options
	// FsyncPolicy selects when appends reach stable storage: every append
	// (FsyncAlways), periodically (FsyncInterval, the default), or never
	// explicitly (FsyncNone).
	FsyncPolicy = store.FsyncPolicy
)

// Fsync policies for ResultStoreOptions.Fsync.
const (
	FsyncAlways   = store.FsyncAlways
	FsyncInterval = store.FsyncInterval
	FsyncNone     = store.FsyncNone
)

// OpenResultStore opens (creating if needed) a durable result store.
func OpenResultStore(opts ResultStoreOptions) (*ResultStore, error) { return store.Open(opts) }

// ParseFsyncPolicy reads an fsync policy name ("always", "interval",
// "none"), as used by the dclserved -fsync flag.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) { return store.ParseFsyncPolicy(s) }

// NewMonitor returns an embeddable monitoring service core. The zero
// config is serviceable: GOMAXPROCS identification workers, 4096-probe
// session queues, 3000-probe tumbling windows, the paper's
// identification defaults, and no overload limits (unlimited rates,
// reject-on-full-queue, breaker off).
func NewMonitor(cfg MonitorConfig) *Monitor { return monitor.New(cfg) }

// Client types: the measurement agent's side of the monitor API.
type (
	// MonitorClient is a retrying HTTP client for the monitor's /v1
	// surface; its Ingest honors the server's 429 + Retry-After
	// backpressure contract, resuming from the accepted offset.
	MonitorClient = monitor.Client
	// MonitorClientConfig shapes a MonitorClient (base URL, retry budget,
	// backoff bounds).
	MonitorClientConfig = monitor.ClientConfig
	// IngestStats reports what one Ingest call did: observations
	// accepted, observations the server dropped under a drop policy, and
	// backoff rounds taken.
	IngestStats = monitor.IngestStats
	// MonitorAPIError is a non-2xx monitor API response, decoded from the
	// uniform {"error": {"code", "message"}} envelope; it matches the
	// ingestion sentinels (ErrQueueFull, ErrRateLimited, ...) via
	// errors.Is.
	MonitorAPIError = monitor.APIError
	// MonitorWindowSpec is the JSON window specification accepted when
	// creating a session over the API.
	MonitorWindowSpec = monitor.WindowSpec
)

// NewMonitorClient returns a client for the monitor daemon at
// cfg.BaseURL.
func NewMonitorClient(cfg MonitorClientConfig) (*MonitorClient, error) {
	return monitor.NewClient(cfg)
}
