package dominantlink

import (
	"dominantlink/internal/monitor"
)

// Multi-path monitoring: where IdentifyStream watches one observation
// stream, a Monitor watches many — one session per path, each a bounded
// ingestion queue feeding the windowed pipeline, with every session's
// window identifications multiplexed onto one shared worker pool. The
// monitor's Handler exposes the whole thing over HTTP (ingestion with
// backpressure, per-window results, an SSE transition feed, metrics,
// graceful drain); cmd/dclserved is the standalone daemon, and NewMonitor
// embeds the same service core into any Go program.

// Monitoring types.
type (
	// Monitor manages concurrent per-path identification sessions and
	// serves them over HTTP (Handler) or programmatically (Open).
	Monitor = monitor.Monitor
	// MonitorConfig shapes a Monitor: shared pool size, per-session queue
	// and history bounds, default window shape, identification config.
	MonitorConfig = monitor.Config
	// MonitorSession is one monitored path: Offer ingests observations,
	// Subscribe streams events, Drain closes it flushing the final
	// partial window.
	MonitorSession = monitor.Session
)

// NewMonitor returns an embeddable monitoring service core. The zero
// config is serviceable: GOMAXPROCS identification workers, 4096-probe
// session queues, 3000-probe tumbling windows, the paper's
// identification defaults.
func NewMonitor(cfg MonitorConfig) *Monitor { return monitor.New(cfg) }
